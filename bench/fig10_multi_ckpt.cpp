// Figure 10: effect of multiple checkpoints. HPL N=56000, 128 processes,
// checkpoint intervals {0 (none), 60, 120, 180, 300} seconds, GP vs NORM.
//
// Paper shapes: with no checkpoints GP is slightly slower (logging); with
// more checkpoints GP catches up (crossover around the 180 s interval = 4
// checkpoints) and wins at 60/120 s — i.e. GP affords more checkpoints for
// the same total time, reducing expected work loss.
#include <map>

#include "apps/hpl.hpp"
#include "bench_common.hpp"

using namespace gcr;
using bench::Mode;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("procs", 128, "process count"));
  const auto intervals =
      cli.get_int_list("intervals", {0, 60, 120, 180, 300}, "ckpt periods");
  const std::int64_t problem =
      cli.get_int("n", 56000, "HPL problem size (paper: 56000)");
  const int reps = static_cast<int>(cli.get_int("reps", 3, "repetitions"));
  const bool csv = cli.get_bool("csv", false, "emit CSV");
  cli.finish();

  apps::HplParams hpl;
  hpl.n = problem;
  exp::AppFactory app = [hpl](int nr) { return apps::make_hpl(nr, hpl); };
  const group::GroupSet gp_groups =
      bench::groups_for(Mode::kGp, n, app, hpl.grid_rows);
  const group::GroupSet norm_groups = group::make_norm(n);

  Table t({"interval_s", "GP_exec_s", "GP_ckpts", "NORM_exec_s",
           "NORM_ckpts"});
  for (std::int64_t interval : intervals) {
    std::map<Mode, RunningStats> exec;
    std::map<Mode, RunningStats> counts;
    for (Mode mode : {Mode::kGp, Mode::kNorm}) {
      for (int rep = 1; rep <= reps; ++rep) {
        exp::ExperimentConfig cfg;
        cfg.app = app;
        cfg.nranks = n;
        cfg.seed = static_cast<std::uint64_t>(rep);
        cfg.groups = mode == Mode::kGp ? gp_groups : norm_groups;
        if (interval > 0) {
          cfg.checkpoints = true;
          cfg.schedule.first_at_s = static_cast<double>(interval);
          cfg.schedule.interval_s = static_cast<double>(interval);
          cfg.schedule.round_spread_s = 0.4;
        }
        exp::ExperimentResult res = exp::run_experiment(cfg);
        exec[mode].add(res.exec_time_s);
        counts[mode].add(res.checkpoints_completed);
      }
    }
    t.add_row({Table::num(interval), Table::num(exec[Mode::kGp].mean(), 1),
               Table::num(counts[Mode::kGp].mean(), 1),
               Table::num(exec[Mode::kNorm].mean(), 1),
               Table::num(counts[Mode::kNorm].mean(), 1)});
  }
  bench::emit(
      "Figure 10 - multiple checkpoints (HPL N=56000, 128 procs). Expect: "
      "GP slower with 0 checkpoints (logging), overtakes NORM as "
      "checkpoints multiply",
      t, csv);
  return 0;
}
