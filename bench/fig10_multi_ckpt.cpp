// Figure 10: effect of multiple checkpoints. HPL N=56000, 128 processes,
// checkpoint intervals {0 (none), 60, 120, 180, 300} seconds, GP vs NORM.
//
// Paper shapes: with no checkpoints GP is slightly slower (logging); with
// more checkpoints GP catches up (crossover around the 180 s interval = 4
// checkpoints) and wins at 60/120 s — i.e. GP affords more checkpoints for
// the same total time, reducing expected work loss.
#include "apps/hpl.hpp"
#include "bench_common.hpp"

using namespace gcr;
using bench::Mode;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("procs", 128, "process count"));
  const auto intervals =
      cli.get_int_list("intervals", {0, 60, 120, 180, 300}, "ckpt periods");
  const std::int64_t problem =
      cli.get_int("n", 56000, "HPL problem size (paper: 56000)");
  const int reps = cli.get_reps(3);
  const bool csv = cli.get_bool("csv", false, "emit CSV");
  const int jobs = cli.get_jobs();
  cli.finish();

  apps::HplParams hpl;
  hpl.n = problem;
  exp::AppFactory app = [hpl](int nr) { return apps::make_hpl(nr, hpl); };
  auto cache = std::make_shared<bench::GroupCache>(app, hpl.grid_rows);
  const std::vector<Mode> modes{Mode::kGp, Mode::kNorm};

  exp::Scenario sc;
  sc.name = "hpl/multi-ckpt";
  sc.axes = {exp::SweepAxis::ints("interval", intervals),
             bench::mode_axis(modes)};
  sc.reps = reps;
  sc.config = [n, app, cache](const exp::SweepPoint& point) {
    exp::ExperimentConfig cfg;
    cfg.app = app;
    cfg.nranks = n;
    cfg.seed = point.seed;
    cfg.groups = cache->get(bench::mode_at(point), n);
    const double interval = point.get("interval");
    if (interval > 0) {
      cfg.checkpoints = true;
      cfg.schedule.first_at_s = interval;
      cfg.schedule.interval_s = interval;
      cfg.schedule.round_spread_s = 0.4;
    }
    return cfg;
  };
  sc.collect = [](const exp::SweepPoint&, const exp::ExperimentResult& res,
                  exp::Collector& col) {
    col.add("exec", res.exec_time_s);
    col.add("ckpts", res.checkpoints_completed);
  };
  const exp::CampaignResult camp = exp::run_campaign(sc, {jobs});
  auto stat = [&](std::size_t ii, Mode m, const char* metric) {
    return bench::cell_mean(
        camp.stat(sc.cell_index({ii, bench::mode_index(modes, m)}), metric),
        1);
  };

  Table t({"interval_s", "GP_exec_s", "GP_ckpts", "NORM_exec_s",
           "NORM_ckpts"});
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    t.add_row({Table::num(intervals[i]), stat(i, Mode::kGp, "exec"),
               stat(i, Mode::kGp, "ckpts"), stat(i, Mode::kNorm, "exec"),
               stat(i, Mode::kNorm, "ckpts")});
  }
  bench::emit(
      "Figure 10 - multiple checkpoints (HPL N=56000, 128 procs). Expect: "
      "GP slower with 0 checkpoints (logging), overtakes NORM as "
      "checkpoints multiply",
      t, csv, camp.unfinished_runs);
  return 0;
}
