// Figure 5: HPL execution time with one checkpoint at t=60 s, and the
// difference from NORM (5b).
//
// Paper shapes: all four modes are close (within ~10 s); NORM fluctuates
// (checkpoint delay spikes leak into total time); GP's edge over NORM grows
// with scale (logging cost < saved coordination).
#include <map>

#include "hpl_modes.hpp"

using namespace gcr;
using bench::Mode;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  bench::HplSweepOptions opt;
  opt.procs = cli.get_int_list("procs", opt.procs, "process counts");
  opt.reps = static_cast<int>(cli.get_int("reps", 5, "repetitions"));
  const bool csv = cli.get_bool("csv", false, "emit CSV");
  cli.finish();
  opt.restart_after_finish = false;  // 5a/5b only need execution time

  std::map<std::pair<int, Mode>, RunningStats> exec;
  bench::sweep_hpl(opt, [&](int n, Mode m, const exp::ExperimentResult& res) {
    exec[{n, m}].add(res.exec_time_s);
  });

  Table t5a({"procs", "GP_s", "GP1_s", "GP4_s", "NORM_s"});
  Table t5b({"procs", "GP-NORM_s", "GP1-NORM_s", "GP4-NORM_s"});
  for (std::int64_t n64 : opt.procs) {
    const int n = static_cast<int>(n64);
    const double gp = exec[{n, Mode::kGp}].mean();
    const double gp1 = exec[{n, Mode::kGp1}].mean();
    const double gp4 = exec[{n, Mode::kGp4}].mean();
    const double norm = exec[{n, Mode::kNorm}].mean();
    t5a.add_row({Table::num(static_cast<std::int64_t>(n)),
                 Table::num(gp, 1), Table::num(gp1, 1), Table::num(gp4, 1),
                 Table::num(norm, 1)});
    t5b.add_row({Table::num(static_cast<std::int64_t>(n)),
                 Table::num(gp - norm, 2), Table::num(gp1 - norm, 2),
                 Table::num(gp4 - norm, 2)});
  }
  bench::emit("Figure 5a - HPL execution time, one checkpoint at t=60s",
              t5a, csv);
  bench::emit(
      "Figure 5b - difference from NORM (lower is better). Expect: GP "
      "advantage grows with scale",
      t5b, csv);
  return 0;
}
