// Figure 5: HPL execution time with one checkpoint at t=60 s, and the
// difference from NORM (5b).
//
// Paper shapes: all four modes are close (within ~10 s); NORM fluctuates
// (checkpoint delay spikes leak into total time); GP's edge over NORM grows
// with scale (logging cost < saved coordination).
#include "hpl_modes.hpp"

using namespace gcr;
using bench::Mode;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  bench::HplSweepOptions opt;
  opt.procs = cli.get_int_list("procs", opt.procs, "process counts");
  opt.reps = cli.get_reps(5);
  const bool csv = cli.get_bool("csv", false, "emit CSV");
  const int jobs = cli.get_jobs();
  opt.shards = cli.get_shards();
  const bool fault = cli.get_bool(
      "fault", false, "kill group 0 at t=80s (restore-from-image e2e)");
  cli.finish();
  opt.restart_after_finish = false;  // 5a/5b only need execution time
  // Post-checkpoint failure: the t=60s image exists, so the run exercises
  // the full kill -> restore -> replay path (CI drives this at --shards 4
  // under TSan, where the kill/restore fan-out crosses resident shards).
  if (fault) opt.failures = {{0, 80.0}};

  const exp::Scenario sc = bench::hpl_scenario(
      "hpl/exec-time", opt,
      [](int, Mode, const exp::ExperimentResult& res, exp::Collector& col) {
        col.add("exec", res.exec_time_s);
      });
  const exp::CampaignResult camp = exp::run_campaign(sc, {jobs});
  auto exec = [&](std::size_t ni, Mode m) -> const RunningStats& {
    return camp.stat(sc.cell_index({ni, bench::mode_index(opt.modes, m)}),
                     "exec");
  };
  auto diff = [](const RunningStats& a, const RunningStats& b) {
    return a.count() && b.count() ? Table::num(a.mean() - b.mean(), 2)
                                  : std::string("n/a");
  };

  Table t5a({"procs", "GP_s", "GP1_s", "GP4_s", "NORM_s"});
  Table t5b({"procs", "GP-NORM_s", "GP1-NORM_s", "GP4-NORM_s"});
  for (std::size_t i = 0; i < opt.procs.size(); ++i) {
    const RunningStats& gp = exec(i, Mode::kGp);
    const RunningStats& gp1 = exec(i, Mode::kGp1);
    const RunningStats& gp4 = exec(i, Mode::kGp4);
    const RunningStats& norm = exec(i, Mode::kNorm);
    t5a.add_row({Table::num(opt.procs[i]), bench::cell_mean(gp, 1),
                 bench::cell_mean(gp1, 1), bench::cell_mean(gp4, 1),
                 bench::cell_mean(norm, 1)});
    t5b.add_row({Table::num(opt.procs[i]), diff(gp, norm), diff(gp1, norm),
                 diff(gp4, norm)});
  }
  bench::emit("Figure 5a - HPL execution time, one checkpoint at t=60s",
              t5a, csv, camp.unfinished_runs);
  bench::emit(
      "Figure 5b - difference from NORM (lower is better). Expect: GP "
      "advantage grows with scale",
      t5b, csv, camp.unfinished_runs);
  return 0;
}
