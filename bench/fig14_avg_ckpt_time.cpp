// Figure 14: average time per checkpoint, GP vs MPICH-VCL, CG Class C with
// remote checkpoint servers, 16..128 processes.
//
// Paper shape: GP below VCL throughout, both rising with scale (4 shared
// servers), VCL's trend steeper ("may perform much less efficiently than GP
// when the system is further scaled").
#include "apps/cg.hpp"
#include "bench_common.hpp"

using namespace gcr;
using bench::Mode;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto procs = cli.get_int_list("procs", {16, 32, 64, 128}, "counts");
  const int reps = cli.get_reps(3);
  const bool csv = cli.get_bool("csv", false, "emit CSV");
  const int jobs = cli.get_jobs();
  cli.finish();

  exp::AppFactory app = [](int nr) { return apps::make_cg(nr); };
  auto cache = std::make_shared<bench::GroupCache>(app);

  exp::Scenario sc;
  sc.name = "cg/avg-ckpt-time";
  // protocol: 0 = GP (group protocol), 1 = VCL.
  sc.axes = {exp::SweepAxis::ints("procs", procs),
             exp::SweepAxis::ints("protocol", {0, 1})};
  sc.reps = reps;
  sc.config = [app, cache](const exp::SweepPoint& point) {
    exp::ExperimentConfig cfg;
    cfg.app = app;
    cfg.nranks = static_cast<int>(point.get_int("procs"));
    cfg.seed = point.seed;
    cfg.remote_storage = true;
    cfg.checkpoints = true;
    cfg.schedule.first_at_s = 60.0;
    if (point.get_int("protocol") == 1) {
      cfg.protocol = exp::ProtocolKind::kVcl;
    } else {
      cfg.groups = cache->get(Mode::kGp, cfg.nranks);
      cfg.schedule.round_spread_s = 0.4;
    }
    return cfg;
  };
  sc.collect = [](const exp::SweepPoint&, const exp::ExperimentResult& res,
                  exp::Collector& col) {
    col.add("per_ckpt", res.metrics.mean_ckpt_time_s());
  };
  const exp::CampaignResult camp = exp::run_campaign(sc, {jobs});

  Table t({"procs", "GP_per_ckpt_s", "VCL_per_ckpt_s"});
  for (std::size_t i = 0; i < procs.size(); ++i) {
    t.add_row(
        {Table::num(procs[i]),
         bench::cell_mean(camp.stat(sc.cell_index({i, 0}), "per_ckpt"), 2),
         bench::cell_mean(camp.stat(sc.cell_index({i, 1}), "per_ckpt"), 2)});
  }
  bench::emit(
      "Figure 14 - average time per checkpoint on remote storage (CG Class "
      "C). Expect: GP < VCL throughout, VCL rising steeply",
      t, csv, camp.unfinished_runs);
  return 0;
}
