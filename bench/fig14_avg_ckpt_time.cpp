// Figure 14: average time per checkpoint, GP vs MPICH-VCL, CG Class C with
// remote checkpoint servers, 16..128 processes.
//
// Paper shape: GP below VCL throughout, both rising with scale (4 shared
// servers), VCL's trend steeper ("may perform much less efficiently than GP
// when the system is further scaled").
#include "apps/cg.hpp"
#include "bench_common.hpp"

using namespace gcr;
using bench::Mode;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto procs =
      cli.get_int_list("procs", {16, 32, 64, 128}, "counts");
  const int reps = static_cast<int>(cli.get_int("reps", 3, "repetitions"));
  const bool csv = cli.get_bool("csv", false, "emit CSV");
  cli.finish();

  exp::AppFactory app = [](int nr) { return apps::make_cg(nr); };

  Table t({"procs", "GP_per_ckpt_s", "VCL_per_ckpt_s"});
  for (std::int64_t n64 : procs) {
    const int n = static_cast<int>(n64);
    const group::GroupSet gp_groups = bench::groups_for(Mode::kGp, n, app);
    RunningStats gp_time, vcl_time;
    for (int rep = 1; rep <= reps; ++rep) {
      for (bool use_vcl : {false, true}) {
        exp::ExperimentConfig cfg;
        cfg.app = app;
        cfg.nranks = n;
        cfg.seed = static_cast<std::uint64_t>(rep);
        cfg.remote_storage = true;
        cfg.checkpoints = true;
        cfg.schedule.first_at_s = 60.0;
        if (use_vcl) {
          cfg.protocol = exp::ProtocolKind::kVcl;
        } else {
          cfg.groups = gp_groups;
          cfg.schedule.round_spread_s = 0.4;
        }
        exp::ExperimentResult res = exp::run_experiment(cfg);
        (use_vcl ? vcl_time : gp_time).add(res.metrics.mean_ckpt_time_s());
      }
    }
    t.add_row({Table::num(static_cast<std::int64_t>(n)),
               Table::num(gp_time.mean(), 2), Table::num(vcl_time.mean(), 2)});
  }
  bench::emit(
      "Figure 14 - average time per checkpoint on remote storage (CG Class "
      "C). Expect: GP < VCL throughout, VCL rising steeply",
      t, csv);
  return 0;
}
