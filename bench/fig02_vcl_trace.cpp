// Figure 2: MPI trace diagrams for CG using MPICH-VCL, checkpoints every
// 30 s, at 32 vs 128 processes.
//
// Paper: at 32 processes the checkpoint windows still contain message
// transfers (progress); at 128 the windows are light-grey "gaps" spanning
// nearly the whole checkpoint — the application is effectively paused, and
// checkpointing eats >50% of the execution time.
#include <algorithm>

#include "apps/cg.hpp"
#include "bench_common.hpp"
#include "trace/timeline.hpp"

using namespace gcr;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double interval = cli.get_double("interval", 30.0, "ckpt period (s)");
  const auto procs = cli.get_int_list("procs", {32, 128}, "process counts");
  const bool csv = cli.get_bool("csv", false, "emit CSV");
  const int jobs = cli.get_jobs();
  cli.finish();

  exp::Scenario sc;
  sc.name = "cg/vcl-trace";
  sc.axes = {exp::SweepAxis::ints("procs", procs)};
  sc.reps = 1;
  sc.config = [interval](const exp::SweepPoint& point) {
    exp::ExperimentConfig cfg;
    cfg.app = [](int nr) { return apps::make_cg(nr); };
    cfg.nranks = static_cast<int>(point.get_int("procs"));
    cfg.seed = point.seed;
    cfg.protocol = exp::ProtocolKind::kVcl;
    cfg.remote_storage = true;
    cfg.checkpoints = true;
    cfg.schedule.first_at_s = interval;
    cfg.schedule.interval_s = interval;
    cfg.collect_trace = true;
    return cfg;
  };
  sc.collect = [](const exp::SweepPoint& point,
                  const exp::ExperimentResult& res, exp::Collector& col) {
    const int nranks = static_cast<int>(point.get_int("procs"));
    col.add("exec", res.exec_time_s);
    double windows = 0;
    for (const auto& rec : res.metrics.ckpts) {
      windows += sim::to_seconds(rec.end - rec.begin);
    }
    col.add("window_share", windows / (nranks * res.exec_time_s));
    col.add("gap",
            trace::gap_fraction(res.trace, res.metrics.ckpt_windows(), 5.0));

    trace::TimelineOptions opts;
    opts.begin = 0;
    opts.end = sim::from_seconds(res.exec_time_s);
    opts.columns = 110;
    // The paper shows P0-P3; clamp for runs smaller than 4 ranks.
    for (int r = 0; r < std::min(nranks, 4); ++r) opts.ranks.push_back(r);
    col.add_text(
        trace::render_timeline(res.trace, res.metrics.ckpt_windows(), opts));
  };
  const exp::CampaignResult camp = exp::run_campaign(sc, {jobs});

  Table table({"procs", "exec_s", "ckpt_window_share", "gap_fraction"});
  for (std::size_t i = 0; i < procs.size(); ++i) {
    for (const std::string& timeline : camp.cells[i].texts) {
      std::printf("---- CG with MPICH-VCL-style checkpoints, %lld processes "
                  "(P0-P3 shown) ----\n%s\n",
                  static_cast<long long>(procs[i]), timeline.c_str());
    }
    table.add_row({Table::num(procs[i]),
                   bench::cell_mean(camp.stat(i, "exec"), 1),
                   bench::cell_mean(camp.stat(i, "window_share"), 3),
                   bench::cell_mean(camp.stat(i, "gap"), 3)});
  }
  bench::emit(
      "Figure 2 - VCL blocking behavior. Expect: checkpoint windows and gap "
      "share far larger at 128 than at 32 (non-blocking turns blocking)",
      table, csv, camp.unfinished_runs);
  return 0;
}
