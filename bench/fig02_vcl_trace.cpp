// Figure 2: MPI trace diagrams for CG using MPICH-VCL, checkpoints every
// 30 s, at 32 vs 128 processes.
//
// Paper: at 32 processes the checkpoint windows still contain message
// transfers (progress); at 128 the windows are light-grey "gaps" spanning
// nearly the whole checkpoint — the application is effectively paused, and
// checkpointing eats >50% of the execution time.
#include "apps/cg.hpp"
#include "bench_common.hpp"
#include "trace/timeline.hpp"

using namespace gcr;

namespace {

struct VclRun {
  double exec_s = 0;
  double window_share = 0;  ///< summed ckpt window / (n * exec)
  double gap = 0;
  std::string timeline;
};

VclRun run_vcl(int nranks, double interval_s, std::uint64_t seed) {
  exp::ExperimentConfig cfg;
  cfg.app = [](int nr) { return apps::make_cg(nr); };
  cfg.nranks = nranks;
  cfg.seed = seed;
  cfg.protocol = exp::ProtocolKind::kVcl;
  cfg.remote_storage = true;
  cfg.checkpoints = true;
  cfg.schedule.first_at_s = interval_s;
  cfg.schedule.interval_s = interval_s;
  cfg.collect_trace = true;
  exp::ExperimentResult res = exp::run_experiment(cfg);

  VclRun out;
  out.exec_s = res.exec_time_s;
  double windows = 0;
  for (const auto& rec : res.metrics.ckpts) {
    windows += sim::to_seconds(rec.end - rec.begin);
  }
  out.window_share = windows / (nranks * res.exec_time_s);
  out.gap = trace::gap_fraction(res.trace, res.metrics.ckpt_windows(), 5.0);

  trace::TimelineOptions opts;
  opts.begin = 0;
  opts.end = sim::from_seconds(res.exec_time_s);
  opts.columns = 110;
  opts.ranks = {0, 1, 2, 3};  // the paper shows P0-P3
  out.timeline =
      trace::render_timeline(res.trace, res.metrics.ckpt_windows(), opts);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double interval = cli.get_double("interval", 30.0, "ckpt period (s)");
  const bool csv = cli.get_bool("csv", false, "emit CSV");
  cli.finish();

  Table table({"procs", "exec_s", "ckpt_window_share", "gap_fraction"});
  for (int n : {32, 128}) {
    VclRun run = run_vcl(n, interval, /*seed=*/1);
    std::printf("---- CG with MPICH-VCL-style checkpoints, %d processes "
                "(P0-P3 shown) ----\n%s\n",
                n, run.timeline.c_str());
    table.add_row({Table::num(static_cast<std::int64_t>(n)),
                   Table::num(run.exec_s, 1), Table::num(run.window_share, 3),
                   Table::num(run.gap, 3)});
  }
  bench::emit(
      "Figure 2 - VCL blocking behavior. Expect: checkpoint windows and gap "
      "share far larger at 128 than at 32 (non-blocking turns blocking)",
      table, csv);
  return 0;
}
