// HPL campaign: the paper's flagship experiment as a library user would run
// it — compare the four grouping modes (GP / GP1 / GP4 / NORM) on HPL at a
// chosen scale, with one checkpoint and a whole-application restart, and
// print a per-mode summary.
//
// Build & run:  ./build/examples/hpl_campaign [--procs=64] [--seed=1]
#include <cstdio>
#include <iostream>

#include "apps/hpl.hpp"
#include "exp/experiment.hpp"
#include "group/formation.hpp"
#include "group/strategies.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace gcr;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("procs", 64, "process count"));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 1, "run seed"));
  cli.finish();

  apps::HplParams hpl;  // paper defaults: N=20000, NB=120, P=8
  exp::AppFactory app = [hpl](int nr) { return apps::make_hpl(nr, hpl); };

  struct ModeDef {
    const char* name;
    group::GroupSet groups;
  };
  std::vector<ModeDef> modes;
  std::printf("deriving GP groups from a profiling trace...\n");
  modes.push_back({"GP", exp::derive_groups(app, n, hpl.grid_rows)});
  modes.push_back({"GP1", group::make_gp1(n)});
  modes.push_back({"GP4", group::make_sequential(n, 4)});
  modes.push_back({"NORM", group::make_norm(n)});
  std::printf("GP grouping: %s\n\n", modes[0].groups.to_string().c_str());

  Table table({"mode", "exec_s", "agg_ckpt_s", "agg_restart_s", "logged_MB",
               "resent_KB"});
  for (const ModeDef& mode : modes) {
    exp::ExperimentConfig cfg;
    cfg.app = app;
    cfg.nranks = n;
    cfg.seed = seed;
    cfg.groups = mode.groups;
    cfg.checkpoints = true;
    cfg.schedule.first_at_s = 60.0;
    cfg.schedule.round_spread_s = 0.4;
    cfg.restart_after_finish = true;
    const exp::ExperimentResult res = exp::run_experiment(cfg);
    table.add_row({mode.name, Table::num(res.exec_time_s, 1),
                   Table::num(res.metrics.aggregate_ckpt_time_s(), 1),
                   Table::num(res.restart_aggregate_s, 1),
                   Table::num(static_cast<double>(res.metrics.logged_bytes) / 1e6, 1),
                   Table::num(static_cast<double>(res.metrics.resend_bytes) / 1024.0, 0)});
  }
  std::printf("HPL N=%lld, %d processes, one checkpoint at t=60s + restart\n",
              static_cast<long long>(hpl.n), n);
  table.print(std::cout);
  return 0;
}
