// Quickstart: the full group-based checkpoint/restart workflow on a small
// cluster, end to end:
//   1. profile the application with the communication tracer,
//   2. derive checkpoint groups with Algorithm 2,
//   3. run with periodic group checkpoints,
//   4. inject a group failure mid-run and watch it recover from the images.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "apps/simple.hpp"
#include "exp/experiment.hpp"
#include "group/formation.hpp"
#include "trace/analysis.hpp"
#include "util/units.hpp"

using namespace gcr;

int main() {
  constexpr int kRanks = 12;

  // The workload: a 1-D stencil whose ranks only talk inside disjoint
  // 4-wide blocks — a clear "natural" grouping for the formation to find.
  exp::AppFactory app = [](int n) {
    apps::Stencil1dParams p;
    p.iterations = 80;
    p.cluster_width = 4;
    p.compute_s = 0.02;
    return apps::make_stencil1d(n, p);
  };

  // 1-2. Profile and form groups (the paper's Figure 4 workflow).
  std::printf("profiling %d ranks...\n", kRanks);
  const trace::Trace profile = exp::profile_app(app, kRanks);
  std::printf("  trace: %zu events, %s sent\n", profile.size(),
              format_bytes(trace::total_send_bytes(profile)).c_str());
  const group::GroupSet groups =
      group::form_groups_from_trace(kRanks, profile);
  std::printf("  groups: %s\n\n", groups.to_string().c_str());

  // 3-4. Production run: periodic checkpoints + one failure of group 1.
  exp::ExperimentConfig cfg;
  cfg.app = app;
  cfg.nranks = kRanks;
  cfg.groups = groups;
  cfg.checkpoints = true;
  cfg.schedule.first_at_s = 0.3;
  cfg.schedule.interval_s = 0.4;
  cfg.failures = {{1, 0.9}};

  std::printf("running with group checkpoints + failure at t=0.9s...\n");
  const exp::ExperimentResult res = exp::run_experiment(cfg);

  std::printf("  finished:              %s\n", res.finished ? "yes" : "NO");
  std::printf("  execution time:        %.2f s (simulated)\n",
              res.exec_time_s);
  std::printf("  checkpoints completed: %d rounds\n",
              res.checkpoints_completed);
  std::printf("  failures recovered:    %d\n", res.failures_injected);
  std::printf("  messages logged:       %lld (%s)\n",
              static_cast<long long>(res.metrics.logged_messages),
              format_bytes(res.metrics.logged_bytes).c_str());
  std::printf("  data replayed:         %s in %lld resend ops\n",
              format_bytes(res.metrics.resend_bytes).c_str(),
              static_cast<long long>(res.metrics.resend_ops));
  std::printf("  agg checkpoint time:   %.2f s across all ranks\n",
              res.metrics.aggregate_ckpt_time_s());
  std::printf(
      "\nEvery delivery was verified against per-pair sequence numbers and\n"
      "checksums, so the recovery reproduced the failure-free execution "
      "exactly.\n");
  return res.finished ? 0 : 1;
}
