// Trace-and-group: the offline tooling path of the paper's Figure 4.
//
// Profiles NPB CG, writes the trace to a file (the tracer library's output),
// reads it back, renders a communication timeline, analyses pair volumes,
// runs Algorithm 2, compares against the Gopalan-Nagarajan dynamic scheme,
// and writes the group definition file a production run would consume.
//
// Build & run:  ./build/examples/trace_and_group [--procs=16]
#include <cstdio>

#include "apps/cg.hpp"
#include "exp/experiment.hpp"
#include "group/dynamic.hpp"
#include "group/formation.hpp"
#include "group/groupfile.hpp"
#include "trace/analysis.hpp"
#include "trace/io.hpp"
#include "trace/timeline.hpp"
#include "util/cli.hpp"
#include "util/units.hpp"

using namespace gcr;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("procs", 16, "process count"));
  const std::string trace_path =
      cli.get_string("trace-file", "/tmp/gcr_cg.trace", "trace output file");
  const std::string group_path = cli.get_string(
      "group-file", "/tmp/gcr_cg.groups", "group definition output file");
  cli.finish();

  // 1. Profiling run with the tracer linked in.
  exp::AppFactory app = [](int nr) {
    apps::CgParams p;
    p.outer_iters = 10;  // a short profiling run suffices
    return apps::make_cg(nr, p);
  };
  std::printf("profiling CG on %d ranks...\n", n);
  const trace::Trace profile = exp::profile_app(app, n);
  if (!trace::save_trace(trace_path, profile)) {
    std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
    return 1;
  }
  std::printf("  wrote %zu records to %s\n\n", profile.size(),
              trace_path.c_str());

  // 2. Read it back (the analyzer is a separate tool in the paper).
  bool ok = false;
  const trace::Trace loaded = trace::load_trace(trace_path, &ok);
  if (!ok) return 1;

  // 3. Pair-volume analysis — Algorithm 2's input.
  const auto pairs = trace::aggregate_pairs(loaded);
  std::printf("top communicating pairs (Algorithm 2 input order):\n");
  for (std::size_t i = 0; i < pairs.size() && i < 6; ++i) {
    std::printf("  (%2d,%2d)  %6llu msgs  %s\n", pairs[i].a, pairs[i].b,
                static_cast<unsigned long long>(pairs[i].count),
                format_bytes(pairs[i].bytes).c_str());
  }

  // 4. Algorithm 2 vs the dynamic merging baseline.
  const group::GroupSet groups = group::form_groups(n, pairs);
  const auto dynamic = group::replay_dynamic(n, loaded);
  std::printf("\nAlgorithm 2 groups (G=%d): %s\n",
              group::default_max_group_size(n), groups.to_string().c_str());
  std::printf("dynamic merging: %d group(s)%s\n",
              dynamic.final_groups.num_groups(),
              dynamic.messages_until_collapse >= 0
                  ? " — collapsed to ONE global group"
                  : "");

  // 5. Persist the group definition for production runs.
  if (!group::save_groupfile(group_path, groups)) return 1;
  std::printf("\nwrote group definition to %s\n", group_path.c_str());

  // 6. A glance at the first second of traffic.
  trace::TimelineOptions opts;
  opts.columns = 100;
  opts.end = sim::from_seconds(1.0);
  std::printf("\nfirst second of communication (P0-P3):\n%s",
              trace::render_timeline(loaded, {}, opts).c_str());
  return 0;
}
