// Failure storm: long-running SP-like job riding through repeated group
// failures under periodic group checkpoints — the paper's motivating
// scenario ("group processor nodes that fail more frequently, and select a
// shorter checkpoint interval").
//
// Group 0 is the flaky one: it fails repeatedly; the protocol restarts just
// that group from its latest image while everyone else keeps their work.
//
// Build & run:  ./build/examples/failure_storm [--procs=16] [--failures=3]
#include <cstdio>

#include "apps/sp.hpp"
#include "exp/experiment.hpp"
#include "group/formation.hpp"
#include "util/cli.hpp"
#include "util/units.hpp"

using namespace gcr;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int n = static_cast<int>(
      cli.get_int("procs", 16, "process count (must be a square)"));
  const int nfailures =
      static_cast<int>(cli.get_int("failures", 3, "failures of group 0"));
  cli.finish();

  exp::AppFactory app = [](int nr) {
    apps::SpParams p;
    p.modeled_iters = 40;
    return apps::make_sp(nr, p);
  };

  std::printf("deriving groups for SP on %d ranks...\n", n);
  const group::GroupSet groups = exp::derive_groups(app, n);
  std::printf("  groups: %s\n\n", groups.to_string().c_str());

  exp::ExperimentConfig cfg;
  cfg.app = app;
  cfg.nranks = n;
  cfg.groups = groups;
  cfg.checkpoints = true;
  // The flaky group gets frequent protection: short global interval here
  // (per-group intervals are a one-line scheduler change).
  cfg.schedule.first_at_s = 20.0;
  cfg.schedule.interval_s = 20.0;
  cfg.recovery.detect_s = 2.0;
  cfg.recovery.relaunch_s = 2.0;
  for (int i = 0; i < nfailures; ++i) {
    cfg.failures.push_back({0, 45.0 + 60.0 * i});
  }

  std::printf("running with %d scheduled failures of group 0...\n",
              nfailures);
  const exp::ExperimentResult res = exp::run_experiment(cfg);

  std::printf("\n  finished:            %s\n", res.finished ? "yes" : "NO");
  std::printf("  execution time:      %.1f s (simulated)\n", res.exec_time_s);
  std::printf("  failures recovered:  %d\n", res.failures_injected);
  std::printf("  checkpoint rounds:   %d\n", res.checkpoints_completed);
  std::printf("  restarts performed:  %zu rank-restarts\n",
              res.metrics.restarts.size());
  std::printf("  data replayed:       %s\n",
              format_bytes(res.metrics.resend_bytes).c_str());
  double restart_s = 0;
  for (const auto& r : res.metrics.restarts) {
    restart_s += sim::to_seconds(r.end - r.begin);
  }
  std::printf("  restart prep total:  %.2f s\n", restart_s);
  std::printf(
      "\nOnly group 0 ever rolled back; the other groups' work survived "
      "every failure.\n");
  return res.finished ? 0 : 1;
}
